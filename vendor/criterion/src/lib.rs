//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build container cannot reach crates.io, so the benches link against
//! this minimal vendored harness: it runs each benchmark closure through a
//! short warm-up, then a fixed measurement window, and prints mean
//! time-per-iteration (plus throughput when declared). No statistics,
//! plotting, or baseline comparison — but every bench compiles and produces
//! a usable number, and the API matches criterion 0.5 for the calls the
//! workspace makes: `Criterion::{benchmark_group, bench_function}`,
//! `BenchmarkGroup::{sample_size, throughput, bench_with_input, finish}`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId::new`,
//! `Throughput::Elements`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark (after warm-up).
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for CLI compatibility; the shim has no configurable args.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, None, &mut f);
        self
    }

    /// Real criterion writes reports here; the shim only flushes stdout.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's window is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.throughput.clone(), &mut |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().0, self.throughput.clone(), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (`function_name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Conversions accepted where criterion takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the shim treats all variants alike
/// (setup is excluded from timing either way).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    deadline: Instant,
}

impl Bencher {
    /// Run `f` repeatedly until the measurement window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        loop {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Run `setup` (untimed) then `routine` (timed) per iteration.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine takes `&mut I`.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        loop {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn run_one(id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass (discarded).
    let mut warm = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        deadline: Instant::now() + WARMUP_WINDOW,
    };
    f(&mut warm);

    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        deadline: Instant::now() + MEASURE_WINDOW,
    };
    f(&mut b);

    let iters = b.iters_done.max(1);
    let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / per_iter * 1e9 / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("  {id}: {} iters, {:.1} ns/iter{rate}", iters, per_iter);
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; nothing to do.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
