//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a small, deterministic, API-compatible replacement instead of the
//! real crate: [`Rng`] (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), and the [`seq`] helpers (`SliceRandom::{shuffle, choose}`,
//! `IteratorRandom::choose`). Distributions are uniform; rejection sampling
//! keeps integer ranges unbiased. Streams are deterministic per seed, which
//! is exactly what the reproduction's seeded experiments need, but they do
//! NOT match the real StdRng (ChaCha12) byte-for-byte.

pub mod rngs;
pub mod seq;

/// Core source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a `Range` / `RangeInclusive` over the integer
    /// types (unbiased, via rejection sampling) or `f64`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (panics unless `0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        // 53 random mantissa bits, same construction as rand's Standard f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Sample a value of a [`distributions::StandardSample`] type.
    fn gen<T: distributions::StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support for reproducible streams.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (rand's algorithm).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: the same generator rand uses for seed expansion.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! Just enough of `rand::distributions` to back `Rng::{gen, gen_range}`.

    use super::RngCore;

    /// Types samplable by `Rng::gen` (the `Standard` distribution).
    pub trait StandardSample {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Range types accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Integers with an unbiased bounded-sample primitive.
        pub trait SampleUniform: Sized {
            /// Uniform in `[low, high]` (inclusive); caller checks `low <= high`.
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        /// Unbiased uniform draw from `[0, span]` by rejection (Lemire-style
        /// masking would also work; rejection keeps the code obvious).
        fn bounded_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
            if span == u64::MAX {
                return rng.next_u64();
            }
            let n = span + 1;
            // Largest multiple of n that fits in u64; reject above it.
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = rng.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }

        macro_rules! impl_uniform_uint {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        let span = (high as u64).wrapping_sub(low as u64);
                        low.wrapping_add(bounded_u64(span, rng) as $t)
                    }
                }
            )*};
        }
        impl_uniform_uint!(u8, u16, u32, u64, usize);

        macro_rules! impl_uniform_int {
            ($($t:ty => $u:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                        let span = (high as $u).wrapping_sub(low as $u) as u64;
                        low.wrapping_add(bounded_u64(span, rng) as $t)
                    }
                }
            )*};
        }
        impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

        impl SampleUniform for f64 {
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                low + unit * (high - low)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy + OneStep> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                assert!(self.start < self.end, "gen_range: empty range");
                T::sample_inclusive(self.start, self.end.step_down(), rng)
            }
        }

        impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range: empty range");
                T::sample_inclusive(low, high, rng)
            }
        }

        /// Exclusive-to-inclusive upper-bound conversion for `Range<T>`.
        pub trait OneStep {
            fn step_down(self) -> Self;
        }

        macro_rules! impl_one_step {
            ($($t:ty),*) => {$(
                impl OneStep for $t {
                    fn step_down(self) -> Self { self - 1 }
                }
            )*};
        }
        impl_one_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl OneStep for f64 {
            // Floats keep the exclusive bound; the measure-zero endpoint is moot.
            fn step_down(self) -> Self {
                self
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IteratorRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..=40);
            assert!((3..=40).contains(&v));
            let w = rng.gen_range(0u64..17);
            assert!(w < 17);
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1u32, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x as usize - 1] = true;
            let y = items.iter().choose(&mut rng).unwrap();
            seen[*y as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!(empty.iter().choose(&mut rng).is_none());
    }
}
