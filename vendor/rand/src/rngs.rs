//! The workspace's standard RNG: xoshiro256++ behind the `StdRng` name.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// API-compatible stand-in for `rand::rngs::StdRng`; the output stream
/// differs from the real crate's ChaCha12 but has the same contract the
/// workspace relies on: reproducible per seed, 64-bit output, passes the
/// usual statistical batteries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}
