//! Sequence helpers: `SliceRandom` and `IteratorRandom`.

use crate::{Rng, RngCore};

/// Random operations on slices (`shuffle`, `choose`).
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

/// Random operations on iterators (reservoir sampling).
pub trait IteratorRandom: Iterator + Sized {
    /// Uniformly random element of the iterator, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = None;
        for (seen, item) in self.enumerate() {
            // Keep the i-th item with probability 1/(i+1): classic reservoir.
            if seen == 0 || rng.gen_range(0..=seen) == 0 {
                chosen = Some(item);
            }
        }
        chosen
    }
}

impl<I: Iterator> IteratorRandom for I {}
