//! Property-level integration tests pinning the theorem bounds under
//! randomized workloads (heavier than the per-crate unit tests).

use forgiving_tree::graph::bfs::diameter_exact;
use forgiving_tree::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorems 1.1 + 1.2 on random trees with random deletion orders,
    /// verified after every deletion.
    #[test]
    fn theorems_hold_on_random_trees(nn in 8usize..64, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(nn, &mut rng);
        let tree = RootedTree::from_tree_graph(&g, NodeId(0));
        let mut ft = ForgivingTree::new(&tree);
        let bound = ft.diameter_bound();
        let mut order: Vec<NodeId> = tree.nodes().collect();
        order.shuffle(&mut rng);
        for v in order {
            ft.delete(v);
            prop_assert!(ft.max_degree_increase() <= 3);
            if ft.len() > 1 {
                let d = diameter_exact(ft.graph()).expect("connected");
                prop_assert!(d <= bound, "diameter {} > {}", d, bound);
            }
        }
    }

    /// Theorem 1.3: per-node messages stay below a constant on power-law
    /// trees (high-degree hubs), for both engines.
    #[test]
    fn message_bound_on_pref_trees(nn in 10usize..48, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_attachment_tree(nn, &mut rng);
        let tree = RootedTree::from_tree_graph(&g, NodeId(0));
        let mut spec = ForgivingTree::new(&tree);
        let mut dist = DistributedForgivingTree::new(&tree);
        let mut order: Vec<NodeId> = tree.nodes().collect();
        order.shuffle(&mut rng);
        for v in order {
            let sr = spec.delete(v);
            let dr = dist.delete(v);
            prop_assert!(sr.max_messages_per_node <= 24, "spec: {}", sr.max_messages_per_node);
            prop_assert!(dr.max_messages_per_node <= 40, "dist: {}", dr.max_messages_per_node);
            prop_assert!(dr.rounds <= 8);
            prop_assert_eq!(spec.graph(), dist.graph());
        }
    }

    /// Ablation configurations preserve every safety invariant (they only
    /// trade the diameter constant).
    #[test]
    fn ablation_configs_stay_safe(nn in 6usize..32, seed in 0u64..200,
                                  balanced in proptest::bool::ANY,
                                  heir_min in proptest::bool::ANY) {
        use forgiving_tree::core::shape::ShapeConfig;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::random_tree(nn, &mut rng);
        let tree = RootedTree::from_tree_graph(&g, NodeId(0));
        let mut ft = ForgivingTree::with_config(&tree, ShapeConfig { balanced, heir_min });
        let mut order: Vec<NodeId> = tree.nodes().collect();
        order.shuffle(&mut rng);
        for v in order {
            ft.delete(v);
            ft.validate();
        }
    }
}
