//! Property-level integration tests pinning the Forgiving Graph's O(log n)
//! guarantees (arXiv:0902.2501, Theorem 1) under randomized mixed
//! insert/delete campaigns on the message-level distributed engine.

use forgiving_tree::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives `events` churn events planned by [`MixedChurn`] against a seeded
/// connected workload, auditing after every wave (panics on any violation).
fn run_churn(nn: usize, seed: u64, insert_pct: u8, events: usize) -> DistributedForgivingGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnp_connected(nn, 2.0 / nn as f64, &mut rng);
    let mut dist = DistributedForgivingGraph::new(&g);
    let mut planner = MixedChurn::new(seed, f64::from(insert_pct) / 100.0);
    let mut campaign = Campaign::new(CampaignConfig::default());
    let mut remaining = events;
    while remaining > 0 && dist.len() > 2 {
        let k = remaining.min(6);
        let plan = planner.plan(
            AdversaryView {
                graph: dist.graph(),
                ft: None,
            },
            k,
        );
        if plan.is_empty() {
            break;
        }
        remaining -= plan.len();
        dist.run_wave(&mut campaign, &plan);

        let capacity = dist.graph().capacity();
        assert!(dist.graph().is_connected(), "healer lost connectivity");
        let deg = dist.max_degree_increase();
        assert!(
            deg <= fg_degree_bound(capacity),
            "degree increase {deg} exceeds the O(log n) bound {}",
            fg_degree_bound(capacity)
        );
        let stretch = measure_stretch(dist.graph(), dist.pristine(), 6, seed);
        assert_eq!(
            stretch.disconnected_pairs, 0,
            "surviving pair unreachable in the healed graph"
        );
        assert!(
            stretch.max_stretch <= fg_stretch_bound(capacity),
            "stretch {} exceeds the O(log n) bound {}",
            stretch.max_stretch,
            fg_stretch_bound(capacity)
        );
        dist.check_wills().expect("wills consistent");
        dist.network().check_accounting().expect("books balance");
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paper Theorem 1: on random insert/delete campaigns, the stretch
    /// between surviving sampled pairs never exceeds the O(log n) bound
    /// constant, degree increase stays within its bound, and every audit
    /// (connectivity, wills, message books) passes after every wave.
    #[test]
    fn stretch_and_degree_bounded_on_random_churn(
        nn in 8usize..72,
        seed in 0u64..1000,
        insert_pct in 10u8..80,
    ) {
        let events = nn;
        run_churn(nn, seed, insert_pct, events);
    }
}

/// Degree-increase regression: a pinned seeded campaign must not regress
/// beyond the value the current healer achieves (well under the O(log n)
/// bound of 33 for this capacity).
#[test]
fn degree_increase_regression_on_seeded_campaign() {
    let mut rng = StdRng::seed_from_u64(1234);
    let g = gen::gnp_connected(400, 0.006, &mut rng);
    let mut dist = DistributedForgivingGraph::new(&g);
    let mut planner = MixedChurn::new(99, 0.35);
    let mut campaign = Campaign::new(CampaignConfig::default());
    for _ in 0..20 {
        let plan = planner.plan(
            AdversaryView {
                graph: dist.graph(),
                ft: None,
            },
            10,
        );
        dist.run_wave(&mut campaign, &plan);
    }
    assert_eq!(
        campaign.report().insertions + campaign.report().deletions,
        200
    );
    assert!(dist.graph().is_connected());
    dist.check_wills().expect("wills consistent");
    dist.network().check_accounting().expect("books balance");
    let deg = dist.max_degree_increase();
    assert!(
        deg <= 6,
        "degree increase regressed: +{deg} (was ≤ 6, O(log n) bound {})",
        fg_degree_bound(dist.graph().capacity())
    );
    let stretch = measure_stretch(dist.graph(), dist.pristine(), 12, 7);
    assert!(
        stretch.max_stretch <= 4.0,
        "stretch regressed: {} (was ≤ 4.0)",
        stretch.max_stretch
    );
}
