//! End-to-end integration: generate → distributed setup → heal under attack
//! → verify every theorem-level guarantee, across crates.

use forgiving_tree::graph::bfs::diameter_exact;
use forgiving_tree::metrics::{run_trial, TrialConfig};
use forgiving_tree::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[test]
fn general_graph_pipeline_survives_full_deletion() {
    // general graph → distributed BFS tree → FT → full deletion sequence
    let mut rng = StdRng::seed_from_u64(42);
    let overlay = gen::gnp_connected(120, 5.0 / 120.0, &mut rng);
    let setup = distributed_bfs_tree(&overlay, NodeId(0));
    assert_eq!(setup.tree.len(), 120);
    let mut ft = ForgivingTree::new(&setup.tree);
    let bound = ft.diameter_bound();
    let mut order: Vec<NodeId> = setup.tree.nodes().collect();
    order.shuffle(&mut rng);
    for v in order {
        ft.delete(v);
        ft.validate();
        if ft.len() > 1 {
            let d = diameter_exact(ft.graph()).expect("connected");
            assert!(d <= bound, "diameter {d} > bound {bound}");
        }
    }
    assert!(ft.is_empty());
}

#[test]
fn every_adversary_loses_on_every_workload() {
    for w in Workload::suite(48) {
        for adv in forgiving_tree::adversary::standard_suite(7).iter_mut() {
            let mut healer = ForgivingHealer::new(&w.tree());
            let cfg = TrialConfig {
                workload: w.name(),
                delete_fraction: 1.0,
                measure_every: 2,
            };
            let t = run_trial(&cfg, &mut healer, adv.as_mut());
            assert!(
                t.summary.max_degree_increase <= 3,
                "Theorem 1.1 broken: {}",
                t.summary
            );
            assert!(t.summary.stayed_connected, "disconnected: {}", t.summary);
        }
    }
}

#[test]
fn spec_and_distributed_agree_on_p2p_churn() {
    let mut rng = StdRng::seed_from_u64(1);
    let overlay = gen::barabasi_albert(90, 2, &mut rng);
    let tree = RootedTree::bfs_spanning_tree(&overlay, NodeId(0));
    let mut spec = ForgivingTree::new(&tree);
    let mut dist = DistributedForgivingTree::new(&tree);
    let mut order: Vec<NodeId> = tree.nodes().collect();
    order.shuffle(&mut rng);
    for v in order {
        spec.delete(v);
        let r = dist.delete(v);
        assert_eq!(spec.graph(), dist.graph(), "engines diverged at {v:?}");
        assert!(r.rounds <= 8, "recovery latency not O(1)");
    }
}

#[test]
fn theorem2_tradeoff_holds_for_all_healers() {
    // star K(1,64): any healer's measured (α, β) satisfies α^(2β+1) ≥ Δ
    let delta = 64usize;
    let w = Workload::Star(delta + 1);
    let healers: Vec<Box<dyn SelfHealer>> = vec![
        Box::new(ForgivingHealer::new(&w.tree())),
        Box::new(SurrogateHealer::new(w.graph())),
        Box::new(LineHealer::new(w.graph())),
        Box::new(BinaryTreeHealer::new(w.graph())),
    ];
    for mut h in healers {
        let mut adv = HighestDegreeAdversary;
        let cfg = TrialConfig {
            workload: w.name(),
            delete_fraction: 0.5,
            measure_every: 1,
        };
        let name = h.name();
        let t = run_trial(&cfg, h.as_mut(), &mut adv);
        let alpha = t.summary.max_degree_increase.max(3) as f64;
        let beta = t.summary.max_stretch;
        assert!(
            alpha.powf(2.0 * beta + 1.0) >= delta as f64 * 0.99,
            "{name}: α={alpha}, β={beta} beats the lower bound?!"
        );
    }
}

#[test]
fn forgiving_tree_beats_baselines_where_the_paper_says() {
    // star center deletion: FT keeps stretch ~log Δ, line suffers Θ(n)
    let nn = 65;
    let w = Workload::Star(nn);
    let mut ft = ForgivingHealer::new(&w.tree());
    let mut line = LineHealer::new(w.graph());
    ft.delete(NodeId(0));
    line.delete(NodeId(0));
    let d_ft = diameter_exact(ft.graph()).expect("connected");
    let d_line = diameter_exact(line.graph()).expect("connected");
    assert!(d_ft <= 2 * ((nn as f64).log2().ceil() as u32 + 2));
    assert_eq!(d_line as usize, nn - 2, "line chains all leaves");
    assert!(d_ft < d_line / 3, "FT({d_ft}) must beat line({d_line})");

    // hub-siphon: surrogate blows up degree, FT stays ≤ +3
    let w2 = Workload::Kary(63, 2);
    let mut sur = SurrogateHealer::new(w2.graph());
    let mut ft2 = ForgivingHealer::new(&w2.tree());
    let mut adv = HubSiphon;
    for _ in 0..30 {
        let view = AdversaryView {
            graph: sur.graph(),
            ft: None,
        };
        if let Some(v) = adv.next_target(view) {
            sur.delete(v);
        }
        let view = AdversaryView {
            graph: ft2.graph(),
            ft: ft2.as_forgiving(),
        };
        if let Some(v) = adv.next_target(view) {
            ft2.delete(v);
        }
    }
    assert!(sur.max_degree_increase() >= 10, "surrogate hub blow-up");
    assert!(ft2.max_degree_increase() <= 3, "FT bounded");
}

#[test]
fn heal_reports_are_consistent_across_engines() {
    let w = Workload::Kary(31, 2);
    let tree = w.tree();
    let before = tree.to_graph();
    let mut spec = ForgivingTree::new(&tree);
    let mut dist = DistributedForgivingTree::new(&tree);
    let sr = spec.delete(NodeId(1));
    let dr = dist.delete(NodeId(1));
    assert_eq!(sr.deleted, dr.deleted);
    // both engines produce the same *net* new edges (the spec transcript
    // may additionally log edges that were re-routed within the heal)
    let net: Vec<(NodeId, NodeId)> = spec
        .graph()
        .edges()
        .into_iter()
        .filter(|&(a, b)| !before.has_edge(a, b))
        .collect();
    assert_eq!(net, dr.edges_added);
    for e in &net {
        assert!(sr.edges_added.contains(e), "spec transcript misses {e:?}");
    }
}
