//! `ftree` — command-line driver for the Forgiving Tree reproduction.
//!
//! ```text
//! ftree attack  --workload kary4:256 --adversary heir-hunter \
//!               --healer forgiving-tree --fraction 0.75 [--dot] [--csv]
//! ftree scaling --healer line --adversary diameter-greedy
//! ftree duel    --workload star:128
//! ftree stress  --nodes 100k --deletions 1000 --wave 50 \
//!               --planner heavy-tail --seed 42 --threads 4 \
//!               --out BENCH_sim.json
//! ftree stress  --model graph --nodes 1m --events 2000 --wave 50 \
//!               --planner mixed --insert-frac 0.4 --seed 42 \
//!               --stretch incremental --threads 4 --out BENCH_graph.json
//! ftree costs   [--out BENCH_costs.json]
//! ftree faults  [--nodes 500] [--events 120] [--wave 10] [--seed 42] \
//!               [--threads 1] [--out BENCH_faults.json]
//! ftree lint    [--root DIR] [--format human|json|sarif] [--stale]
//! ftree help
//! ```
//!
//! Both `stress` forms take `--faults MODEL` (`none`, `delay`, `loss`,
//! `dup`, `crash`, `partition`, `chaos`, or `+`-joined combinations like
//! `loss+crash`) to arm a seeded deterministic fault plan on the campaign;
//! `faults` sweeps the full protocol × model bounds-survival matrix.
//!
//! Workload syntax: `path:N`, `star:N`, `kary<K>:N`, `caterpillar:SxL`,
//! `broom:H+B`, `random:N#SEED`, `pref:N#SEED`.
//!
//! Every numeric stress flag accepts scaled forms: `100k`, `1m`, `1e6`,
//! and decimal mantissas like `2.5m` all parse to the obvious integer.

use forgiving_tree::costs::OperationCost;
use forgiving_tree::metrics::{
    log_log_slope, run_fault_matrix, run_graph_stress, run_stress, run_trial, FaultMatrixConfig,
    GraphStressConfig, StressConfig, Table, TrialConfig, Workload,
};
use forgiving_tree::prelude::*;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  ftree attack  --workload W --adversary A --healer H [--fraction F] [--dot] [--csv]\n  \
         ftree scaling --healer H --adversary A\n  \
         ftree duel    --workload W\n  \
         ftree stress  [--model tree]  [--nodes N] [--deletions D] [--wave K] [--arity A] [--planner P] [--cadence per-deletion|per-wave] [--faults M] [--seed S] [--threads T] [--out FILE]\n  \
         ftree stress  --model graph [--nodes N] [--events E] [--wave K] [--insert-frac F] [--extra-edges F] [--planner P] [--faults M] [--seed S] [--sources B] [--stretch full|incremental|both] [--threads T] [--out FILE]\n  \
         ftree costs   [--out FILE]\n  \
         ftree faults  [--nodes N] [--events E] [--wave K] [--seed S] [--threads T] [--out FILE]\n  \
         ftree lint    [--root DIR] [--format human|json|sarif] [--stale] [--rule NAME] [--explain NAME] [--write-effects-baseline]\n\n\
         workloads : path:N star:N kary<K>:N caterpillar:SxL broom:H+B random:N#S pref:N#S\n\
         adversaries: random max-degree min-degree root-attack heir-hunter hub-siphon diameter-greedy\n\
         healers   : forgiving-tree forgiving-graph surrogate line binary-tree no-heal\n\
         planners  : random targeted heavy-tail (tree stress) | mixed surge (graph stress)\n\
         faults    : none delay loss dup crash partition chaos, or +-joined (loss+crash)\n\
         numbers   : stress counts accept scaled forms (100k, 1m, 1e6, 2.5m)"
    );
    exit(2);
}

fn parse_workload(spec: &str) -> Workload {
    let bad = || -> ! {
        eprintln!("unrecognized workload: {spec}");
        usage()
    };
    let (kind, rest) = spec.split_once(':').unwrap_or_else(|| bad());
    let num = |s: &str| s.parse::<usize>().unwrap_or_else(|_| bad());
    match kind {
        "path" => Workload::Path(num(rest)),
        "star" => Workload::Star(num(rest)),
        k if k.starts_with("kary") => Workload::Kary(num(rest), num(&k[4..])),
        "caterpillar" => {
            let (s, l) = rest.split_once('x').unwrap_or_else(|| bad());
            Workload::Caterpillar(num(s), num(l))
        }
        "broom" => {
            let (h, b) = rest.split_once('+').unwrap_or_else(|| bad());
            Workload::Broom(num(h), num(b))
        }
        "random" => {
            let (n, s) = rest.split_once('#').unwrap_or((rest, "1"));
            Workload::RandomTree(num(n), num(s) as u64)
        }
        "pref" => {
            let (n, s) = rest.split_once('#').unwrap_or((rest, "1"));
            Workload::PrefTree(num(n), num(s) as u64)
        }
        _ => bad(),
    }
}

fn make_adversary(name: &str, seed: u64) -> Box<dyn Adversary> {
    match name {
        "random" => Box::new(RandomAdversary::new(seed)),
        "max-degree" => Box::new(HighestDegreeAdversary),
        "min-degree" => Box::new(LowestDegreeAdversary),
        "root-attack" => Box::new(RootAdversary),
        "heir-hunter" => Box::new(HeirHunter),
        "hub-siphon" => Box::new(HubSiphon),
        "diameter-greedy" => Box::new(DiameterGreedy::default()),
        _ => {
            eprintln!("unknown adversary: {name}");
            usage()
        }
    }
}

fn make_healer(name: &str, w: &Workload) -> Box<dyn SelfHealer> {
    match name {
        "forgiving-tree" => Box::new(ForgivingHealer::new(&w.tree())),
        "forgiving-graph" => Box::new(ForgivingGraphHealer::new(w.graph())),
        "surrogate" => Box::new(SurrogateHealer::new(w.graph())),
        "line" => Box::new(LineHealer::new(w.graph())),
        "binary-tree" => Box::new(BinaryTreeHealer::new(w.graph())),
        "no-heal" => Box::new(NoHeal::new(w.graph())),
        _ => {
            eprintln!("unknown healer: {name}");
            usage()
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Parses a count with optional scale: `1000`, `100k`, `1m`, `2.5m`, `1e6`.
///
/// Plain integers take the fast exact path; the suffixed and exponent forms
/// go through f64 (the presets they exist for — 10⁵, 10⁶ — are far below
/// the 2⁵³ limit where that would lose precision). Returns `None` for
/// negatives, NaN/inf, and anything that is not a number.
fn parse_scaled(s: &str) -> Option<usize> {
    let t = s.trim();
    if let Ok(v) = t.parse::<usize>() {
        return Some(v);
    }
    let approx = |v: f64| -> Option<usize> {
        (v.is_finite() && v >= 0.0 && v <= 2f64.powi(53)).then(|| v.round() as usize)
    };
    if let Some(stripped) = t.strip_suffix(['k', 'K']) {
        return approx(stripped.parse::<f64>().ok()? * 1e3);
    }
    if let Some(stripped) = t.strip_suffix(['m', 'M']) {
        return approx(stripped.parse::<f64>().ok()? * 1e6);
    }
    // `1e6` / `2E5`: f64 syntax already covers the exponent form.
    if t.contains(['e', 'E']) {
        return approx(t.parse::<f64>().ok()?);
    }
    None
}

/// Reads and validates `--faults` (default `none`) against the named
/// fault models, rejecting unknown names before any campaign runs.
fn parse_fault_model(args: &[String]) -> String {
    let model = flag_value(args, "--faults").unwrap_or("none");
    if forgiving_tree::prelude::make_fault_plan(model, 0).is_none() {
        eprintln!("unknown fault model: {model}");
        usage();
    }
    model.into()
}

fn cmd_attack(args: &[String]) {
    let w = parse_workload(flag_value(args, "--workload").unwrap_or("kary4:256"));
    let adv_name = flag_value(args, "--adversary").unwrap_or("max-degree");
    let healer_name = flag_value(args, "--healer").unwrap_or("forgiving-tree");
    let fraction: f64 = flag_value(args, "--fraction")
        .unwrap_or("1.0")
        .parse()
        .unwrap_or_else(|_| usage());
    let mut adv = make_adversary(adv_name, 42);
    let mut healer = make_healer(healer_name, &w);
    let cfg = TrialConfig {
        workload: w.name(),
        delete_fraction: fraction,
        measure_every: (w.graph().len() / 32).max(1),
    };
    let trial = run_trial(&cfg, healer.as_mut(), adv.as_mut());
    if args.iter().any(|a| a == "--csv") {
        let mut t = Table::new("series", &["deletions", "alive", "diameter", "deg_inc"]);
        for s in trial.steps.iter().filter(|s| s.diameter.is_some()) {
            t.push(vec![
                s.deletions.to_string(),
                s.alive.to_string(),
                s.diameter.map(|d| d.to_string()).unwrap_or_default(),
                s.max_degree_increase.to_string(),
            ]);
        }
        print!("{}", t.to_csv());
    }
    println!("{}", trial.summary);
    println!(
        "  D0={} Δ0={} | max diameter {} (stretch {:.2}) | max degree +{} | worst heal: {} msgs, {} per node | connected: {}",
        trial.summary.diam0,
        trial.summary.delta0,
        trial.summary.max_diameter,
        trial.summary.max_stretch,
        trial.summary.max_degree_increase,
        trial.summary.worst_heal_messages,
        trial.summary.worst_node_messages,
        trial.summary.stayed_connected,
    );
    if args.iter().any(|a| a == "--dot") {
        println!("{}", healer.graph().to_dot("healed"));
    }
}

fn cmd_scaling(args: &[String]) {
    let healer_name = flag_value(args, "--healer").unwrap_or("forgiving-tree");
    let adv_name = flag_value(args, "--adversary").unwrap_or("max-degree");
    let mut deg_points = Vec::new();
    let mut diam_points = Vec::new();
    for n in [32usize, 64, 128, 256] {
        let w = Workload::Star(n);
        let mut adv = make_adversary(adv_name, 7);
        let mut healer = make_healer(healer_name, &w);
        let cfg = TrialConfig {
            workload: w.name(),
            delete_fraction: 0.5,
            measure_every: 4,
        };
        let t = run_trial(&cfg, healer.as_mut(), adv.as_mut());
        deg_points.push((n as f64, (t.summary.max_degree_increase.max(1)) as f64));
        diam_points.push((n as f64, t.summary.max_diameter.max(1) as f64));
        println!(
            "n={n:>4}: max degree +{}, max diameter {}",
            t.summary.max_degree_increase, t.summary.max_diameter
        );
    }
    println!(
        "growth exponents on stars (log-log slope): degree {:.2}, diameter {:.2}",
        log_log_slope(&deg_points),
        log_log_slope(&diam_points)
    );
    println!("(≈1 means Θ(n) blow-up; ≈0 means bounded/logarithmic — the paper's contrast)");
}

fn cmd_duel(args: &[String]) {
    let w = parse_workload(flag_value(args, "--workload").unwrap_or("star:128"));
    let mut table = Table::new(
        format!("duel on {}", w.name()),
        &["healer", "adversary", "deg inc", "stretch", "connected"],
    );
    for healer_name in [
        "forgiving-tree",
        "forgiving-graph",
        "surrogate",
        "line",
        "binary-tree",
    ] {
        for adv_name in ["random", "max-degree", "hub-siphon", "diameter-greedy"] {
            let mut adv = make_adversary(adv_name, 3);
            let mut healer = make_healer(healer_name, &w);
            let cfg = TrialConfig {
                workload: w.name(),
                delete_fraction: 0.75,
                measure_every: (w.graph().len() / 16).max(1),
            };
            let t = run_trial(&cfg, healer.as_mut(), adv.as_mut());
            table.push(vec![
                healer_name.into(),
                adv_name.into(),
                format!("+{}", t.summary.max_degree_increase),
                format!("{:.2}", t.summary.max_stretch),
                t.summary.stayed_connected.to_string(),
            ]);
        }
    }
    table.print();
}

fn cmd_stress(args: &[String]) {
    match flag_value(args, "--model").unwrap_or("tree") {
        "tree" => cmd_stress_tree(args),
        "graph" => cmd_stress_graph(args),
        other => {
            eprintln!("unknown stress model: {other} (tree | graph)");
            usage();
        }
    }
}

fn cmd_stress_tree(args: &[String]) {
    let num = |flag: &str, default: usize| -> usize {
        flag_value(args, flag)
            .map(|s| parse_scaled(s).unwrap_or_else(|| usage()))
            .unwrap_or(default)
    };
    let defaults = StressConfig::default();
    let planner = flag_value(args, "--planner").unwrap_or("random");
    if forgiving_tree::prelude::make_wave_planner(planner, 0).is_none() {
        eprintln!("unknown wave planner: {planner}");
        usage();
    }
    let cadence = flag_value(args, "--cadence").unwrap_or("per-deletion");
    if !matches!(cadence, "per-deletion" | "per-wave") {
        eprintln!("unknown cadence: {cadence} (per-deletion | per-wave)");
        usage();
    }
    let faults = parse_fault_model(args);
    let cfg = StressConfig {
        nodes: num("--nodes", defaults.nodes),
        deletions: num("--deletions", defaults.deletions),
        wave_size: num("--wave", defaults.wave_size),
        arity: num("--arity", defaults.arity),
        planner: planner.into(),
        seed: num("--seed", defaults.seed as usize) as u64,
        threads: num("--threads", defaults.threads).max(1),
        cadence: cadence.into(),
        faults,
    };
    // run_stress panics (non-zero exit) on ledger imbalance or (fault-free)
    // a heal that fails to quiesce — exactly the signals CI must treat as
    // failures.
    let rec = run_stress(&cfg);
    println!("{}", rec.summary());
    println!(
        "  ledger: sent {} = delivered {} + dropped {} (+0 in flight) | notices {} | total {}",
        rec.sent, rec.delivered, rec.dropped, rec.notices, rec.total_messages
    );
    if cfg.faults != "none" {
        println!(
            "  faults ({}): lost {} | duplicated {} | delayed {} | crashes {} | converged {} | connected {} | fingerprint {:#018x}",
            cfg.faults,
            rec.lost,
            rec.duplicated,
            rec.delayed,
            rec.crashes,
            rec.converged,
            rec.connected,
            rec.fault_fingerprint
        );
    }
    let out = flag_value(args, "--out").unwrap_or("BENCH_sim.json");
    std::fs::write(out, rec.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!("wrote {out}");
}

fn cmd_stress_graph(args: &[String]) {
    let num = |flag: &str, default: usize| -> usize {
        flag_value(args, flag)
            .map(|s| parse_scaled(s).unwrap_or_else(|| usage()))
            .unwrap_or(default)
    };
    // validate range here: the planners clamp silently, and the emitted
    // record must never describe a campaign that was not actually run
    let frac = |flag: &str, default: f64| -> f64 {
        let f: f64 = flag_value(args, flag)
            .map(|s| s.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(default);
        if !(0.0..=1.0).contains(&f) {
            eprintln!("{flag} must be in [0, 1], got {f}");
            usage();
        }
        f
    };
    let defaults = GraphStressConfig::default();
    let planner = flag_value(args, "--planner").unwrap_or("mixed");
    if forgiving_tree::prelude::make_churn_planner(planner, 0, 0.5).is_none() {
        eprintln!("unknown churn planner: {planner}");
        usage();
    }
    let stretch_mode = flag_value(args, "--stretch").unwrap_or("incremental");
    if !matches!(stretch_mode, "full" | "incremental" | "both") {
        eprintln!("unknown stretch mode: {stretch_mode} (full | incremental | both)");
        usage();
    }
    let faults = parse_fault_model(args);
    let cfg = GraphStressConfig {
        nodes: num("--nodes", defaults.nodes),
        events: num("--events", defaults.events),
        wave_size: num("--wave", defaults.wave_size),
        insert_fraction: frac("--insert-frac", defaults.insert_fraction),
        extra_edges: frac("--extra-edges", defaults.extra_edges),
        planner: planner.into(),
        seed: num("--seed", defaults.seed as usize) as u64,
        stretch_sources: num("--sources", defaults.stretch_sources),
        threads: num("--threads", defaults.threads).max(1),
        stretch_mode: stretch_mode.into(),
        faults,
    };
    // run_graph_stress panics (non-zero exit) on ledger imbalance and, in
    // fault-free runs, on stale wills, lost connectivity, or an O(log n)
    // bound violation — exactly the signals CI must treat as failures.
    let rec = run_graph_stress(&cfg);
    println!("{}", rec.summary());
    println!(
        "  ledger: sent {} = delivered {} + dropped {} (+0 in flight) | notices {} | joins {} | total {}",
        rec.sent, rec.delivered, rec.dropped, rec.notices, rec.joins, rec.total_messages
    );
    println!(
        "  stretch: {} pairs from {} sources, max {:.2} mean {:.2} (bound {:.0}) | degree +{} (bound {})",
        rec.stretch.pairs,
        rec.stretch.sources,
        rec.stretch.max_stretch,
        rec.stretch.mean_stretch,
        rec.stretch_bound,
        rec.max_degree_increase,
        rec.degree_bound
    );
    println!(
        "  stretch engine: {} ({:.1} ms){}",
        rec.stretch_mode,
        rec.stretch_wall_ms,
        // run_graph_stress panics on divergence, so reaching this line in
        // `both` mode IS the agreement certificate — say so explicitly.
        if cfg.stretch_mode == "both" && rec.stretch_modes_agree {
            " | full and incremental figures agree"
        } else {
            ""
        }
    );
    if cfg.faults != "none" {
        println!(
            "  faults ({}): lost {} | duplicated {} | delayed {} | crashes {} | converged {} | wills {} | connected {} | fingerprint {:#018x}",
            cfg.faults,
            rec.lost,
            rec.duplicated,
            rec.delayed,
            rec.crashes,
            rec.converged,
            rec.wills_ok,
            rec.connected,
            rec.fault_fingerprint
        );
    }
    println!(
        "  cost: visits {} scans {} heap {} B | stretch visits {} scans {} heap {} B seeks {}",
        rec.cost.node_visits,
        rec.cost.edge_scans,
        rec.cost.heap_bytes,
        rec.stretch_cost.node_visits,
        rec.stretch_cost.edge_scans,
        rec.stretch_cost.heap_bytes,
        rec.stretch_cost.seeks
    );
    let out = flag_value(args, "--out").unwrap_or("BENCH_graph.json");
    std::fs::write(out, rec.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!("wrote {out}");
}

/// Appends one JSON line per [`OperationCost`] counter, keyed
/// `<prefix>_<counter>`, each line comma-terminated.
fn push_cost_fields(out: &mut String, prefix: &str, c: &OperationCost) {
    use std::fmt::Write;
    for (key, v) in [
        ("messages_sent", c.messages_sent),
        ("messages_delivered", c.messages_delivered),
        ("node_visits", c.node_visits),
        ("edge_scans", c.edge_scans),
        ("heap_bytes", c.heap_bytes),
        ("seeks", c.seeks),
    ] {
        let _ = writeln!(out, "  \"{prefix}_{key}\": {v},");
    }
}

fn cmd_costs(args: &[String]) {
    // The two CI smoke campaigns, pinned: the exact shapes the workflow's
    // stress steps run, at threads=1 with incremental stretch. The emitted
    // record carries counters only — no timing or throughput fields — so
    // the committed baseline is byte-stable across machines and a plain
    // `diff` in CI catches any cost-model drift.
    let tree = run_stress(&StressConfig {
        nodes: 2000,
        deletions: 400,
        wave_size: 25,
        planner: "heavy-tail".into(),
        seed: 1,
        threads: 1,
        ..StressConfig::default()
    });
    let graph = run_graph_stress(&GraphStressConfig {
        nodes: 2000,
        events: 400,
        wave_size: 25,
        insert_fraction: 0.4,
        planner: "mixed".into(),
        seed: 1,
        threads: 1,
        stretch_mode: "incremental".into(),
        ..GraphStressConfig::default()
    });
    let mut json = String::from("{\n  \"bench\": \"costs\",\n");
    json.push_str(&format!("  \"tree_rounds\": {},\n", tree.rounds));
    push_cost_fields(&mut json, "tree", &tree.cost);
    json.push_str(&format!("  \"graph_rounds\": {},\n", graph.rounds));
    push_cost_fields(&mut json, "graph", &graph.cost);
    push_cost_fields(&mut json, "graph_stretch", &graph.stretch_cost);
    json.push_str("  \"schema\": 1\n}\n");
    println!(
        "tree  smoke: rounds {} | sent {} delivered {} | visits {} scans {}",
        tree.rounds,
        tree.cost.messages_sent,
        tree.cost.messages_delivered,
        tree.cost.node_visits,
        tree.cost.edge_scans
    );
    println!(
        "graph smoke: rounds {} | sent {} delivered {} | visits {} scans {} | stretch visits {} seeks {}",
        graph.rounds,
        graph.cost.messages_sent,
        graph.cost.messages_delivered,
        graph.cost.node_visits,
        graph.cost.edge_scans,
        graph.stretch_cost.node_visits,
        graph.stretch_cost.seeks
    );
    let out = flag_value(args, "--out").unwrap_or("BENCH_costs.json");
    std::fs::write(out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!("wrote {out}");
}

fn cmd_faults(args: &[String]) {
    let num = |flag: &str, default: usize| -> usize {
        flag_value(args, flag)
            .map(|s| parse_scaled(s).unwrap_or_else(|| usage()))
            .unwrap_or(default)
    };
    let defaults = FaultMatrixConfig::default();
    let cfg = FaultMatrixConfig {
        nodes: num("--nodes", defaults.nodes),
        events: num("--events", defaults.events),
        wave_size: num("--wave", defaults.wave_size),
        seed: num("--seed", defaults.seed as usize) as u64,
        threads: num("--threads", defaults.threads).max(1),
    };
    let rec = run_fault_matrix(&cfg);
    print!("{}", rec.summary());
    let out = flag_value(args, "--out").unwrap_or("BENCH_faults.json");
    std::fs::write(out, rec.to_json()).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("attack") => cmd_attack(&args[1..]),
        Some("scaling") => cmd_scaling(&args[1..]),
        Some("duel") => cmd_duel(&args[1..]),
        Some("stress") => cmd_stress(&args[1..]),
        Some("costs") => cmd_costs(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("lint") => exit(forgiving_tree::lint::run_cli(&args[1..])),
        _ => usage(),
    }
}
