//! # forgiving-tree
//!
//! A production-quality Rust reproduction of
//! *"The Forgiving Tree: A Self-Healing Distributed Data Structure"*
//! (Hayes, Rustagi, Saia, Trehan; PODC 2008, arXiv:0802.3267).
//!
//! The Forgiving Tree maintains a network under repeated adversarial node
//! deletions: after each deletion, the dead node's neighbors execute a
//! pre-distributed *will* and add O(1) edges, guaranteeing forever that
//!
//! 1. no node's degree grows by more than **3** (Theorem 1.1),
//! 2. the diameter stays **O(D·log Δ)** (Theorem 1.2), and
//! 3. every heal costs **O(1)** rounds and O(1) messages per node
//!    (Theorem 1.3),
//!
//! which is asymptotically optimal (Theorem 2: `α^(2β+1) ≥ Δ`).
//!
//! The successor paper — *The Forgiving Graph* (arXiv:0902.2501) — is
//! implemented alongside it: haft-based healing of arbitrary interleaved
//! node **insertions and deletions** on general graphs, with O(log n)
//! degree increase and O(log n) stretch against the pristine network.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] (`ft-core`) | both data structures: spec engines + distributed protocols |
//! | [`graph`] (`ft-graph`) | graphs (insert + delete), BFS/diameter, rooted trees, generators |
//! | [`sim`] (`ft-sim`) | synchronous simulator (arrivals + deletions) + BFS setup |
//! | [`baselines`] (`ft-baselines`) | surrogate/line/binary-tree/forgiving-graph healers + `SelfHealer` |
//! | [`adversary`] (`ft-adversary`) | omniscient deletion strategies + wave/churn planners |
//! | [`metrics`] (`ft-metrics`) | experiment runner, workloads, tables, stretch pass, stress harnesses |
//!
//! # Quickstart
//!
//! ```
//! use forgiving_tree::prelude::*;
//!
//! // build a 4-ary tree of 85 peers and arm the data structure
//! let graph = gen::kary_tree(85, 4);
//! let tree = RootedTree::from_tree_graph(&graph, NodeId(0));
//! let mut ft = ForgivingTree::new(&tree);
//!
//! // the adversary deletes the root and an internal node
//! ft.delete(NodeId(0));
//! ft.delete(NodeId(2));
//!
//! assert!(ft.graph().is_connected());
//! assert!(ft.max_degree_increase() <= 3);
//! ```
//!
//! The Forgiving Graph heals insertions *and* deletions:
//!
//! ```
//! use forgiving_tree::prelude::*;
//!
//! let mut fg = ForgivingGraph::new(&gen::kary_tree(85, 4));
//!
//! let newcomer = fg.insert_node(&[NodeId(3), NodeId(7)]);
//! fg.delete(NodeId(0));
//! fg.delete(NodeId(3));
//!
//! assert!(fg.graph().is_alive(newcomer));
//! assert!(fg.graph().is_connected());
//! assert!(fg.max_degree_increase() <= fg_degree_bound(fg.graph().capacity()));
//! ```

pub use ft_adversary as adversary;
pub use ft_baselines as baselines;
pub use ft_core as core;
pub use ft_costs as costs;
pub use ft_graph as graph;
pub use ft_lint as lint;
pub use ft_metrics as metrics;
pub use ft_sim as sim;

/// The types most programs need.
pub mod prelude {
    pub use ft_adversary::{
        make_churn_planner, make_fault_plan, make_wave_planner, Adversary, AdversaryView,
        ChurnPlanner, DiameterGreedy, HeavyTailWave, HeirHunter, HighestDegreeAdversary, HubSiphon,
        LowestDegreeAdversary, MixedChurn, RandomAdversary, RandomWave, RootAdversary, SurgeChurn,
        TargetedWave, WavePlanner,
    };
    pub use ft_baselines::{
        BinaryTreeHealer, ForgivingGraphHealer, ForgivingHealer, LineHealer, NoHeal, SelfHealer,
        SurrogateHealer,
    };
    pub use ft_core::distributed::DistributedForgivingTree;
    pub use ft_core::{
        fg_degree_bound, fg_stretch_bound, DistributedForgivingGraph, ForgivingGraph,
        ForgivingTree, Haft, HealReport, HealStats, RoleKind,
    };
    pub use ft_costs::{CostResult, OperationCost};
    pub use ft_graph::tree::RootedTree;
    pub use ft_graph::{gen, ChurnEvent, Graph, NodeId};
    pub use ft_metrics::{
        measure_stretch, measure_stretch_full, run_fault_matrix, run_graph_stress, run_stress,
        run_trial, select_sources, FaultCell, FaultMatrixConfig, FaultMatrixRecord,
        GraphStressConfig, GraphStressRecord, StressConfig, StressRecord, StretchReport,
        StretchTracker, Table, Trial, TrialConfig, Workload,
    };
    pub use ft_sim::bfs::distributed_bfs_tree;
    pub use ft_sim::{
        Campaign, CampaignConfig, CampaignReport, FaultConfig, FaultPlan, HealCadence,
        InFlightPolicy, MsgFate, MsgLedger, SlotPolicy,
    };
}
